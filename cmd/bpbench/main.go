// Command bpbench sweeps a declarative experiment matrix — models ×
// traces × update scenarii × trace lengths — on a sharded worker pool
// and streams per-cell plus aggregate records to a table, JSONL or CSV
// sink. A saved JSONL run doubles as a baseline for regression diffing:
//
//	bpbench -models tage,gshare -scenarios A,C -traces 'INT*' -format jsonl
//	bpbench -models 'tage:tables=9,hist=6:500' -scenarios I,A,B,C
//	bpbench -models 'tage:tables=13' -sweep tables=9:13   # design-space axis
//	bpbench -models tage -delta -4:3 -resume fig9.jsonl   # Figure 9 sweep
//	bpbench -models tage -perf   # branches/sec table on stderr
//	bpbench -metrics-addr :9090 -progress   # live /metrics + pprof + ETA line
//	bpbench compact store.jsonl -dry-run   # store lifecycle maintenance
//	bpbench compact store.jsonl -prune-drift   # drop cells from other SHAs
//	bpbench diff -provenance old.jsonl new.jsonl -tolerance 0.05
//	bpbench serve -addr :9090 -store dist.jsonl   # distributed sweep coordinator
//	bpbench work -connect http://host:9090   # pull worker for a coordinator
//	bpbench merge a.jsonl b.jsonl -o out.jsonl   # union partial result stores
//	bpbench -list
//
// -models accepts model specs — named models ("tage-lsc") or any
// parameterised configuration ("gshare:log=20",
// "composed:tage+ium+lsc,tables=10") — and every cell key and store
// record carries the canonical spec string, so an arbitrary point of the
// design space is as resumable and diffable as the named nine. -sweep
// expands one spec field across a value range ("tables=9:13" or
// "hist=6:500,6:2000"), turning a predictor parameter into a matrix
// axis — the Figure 5-style history/table-count studies.
//
// -delta makes storage budget a matrix axis: each (scalable) model is
// swept across 2^deltaLog budgets, one cell per budget. -resume treats a
// JSONL file as an append-only result store: cells already present (with
// no error) are skipped, failed and missing cells run, and only the new
// records are appended — an interrupted sweep continues instead of
// restarting, and re-running a completed sweep executes nothing. The
// store is held under an advisory lock while a resume appends, so a
// concurrent resume of the same store fails fast instead of interleaving.
//
// Every record a run writes is stamped with provenance (git SHA, dirty
// flag, Go version, schema version); resuming a store whose reused cells
// were recorded under a different revision warns about the drift, and
// `bpbench compact` rewrites a long-lived store down to its canonical
// records — one per cell key, newest success wins, stale aggregate sets
// replaced — without changing what any reader observes.
//
// In diff mode the exit status is non-zero when any cell's MPKI
// regressed beyond the tolerance (or a cell newly fails), making bpbench
// a drop-in CI gate for predictor changes; -provenance adds a column
// saying which revision produced each moved cell.
//
// Observability: -metrics-addr serves the run's telemetry registry in
// Prometheus text-exposition format on /metrics plus net/http/pprof
// under /debug/pprof/ for the duration of the sweep; -progress renders
// a periodic one-line report (cells done/total, branches/sec, ETA) to
// stderr from the same registry. -cpuprofile/-memprofile write
// runtime/pprof profiles on exit. Diagnostics go through a levelled
// stderr logger: -quiet keeps only errors, -v adds debug detail.
package main

import (
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"

	"repro"
	"repro/internal/cli"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable entry point; it returns the process exit code.
func run(args []string, stdout, stderr io.Writer) int {
	if len(args) > 0 && args[0] == "diff" {
		return runDiff(args[1:], stdout, stderr)
	}
	if len(args) > 0 && args[0] == "compact" {
		return runCompact(args[1:], stdout, stderr)
	}
	if len(args) > 0 && args[0] == "serve" {
		return runServe(args[1:], stdout, stderr, nil)
	}
	if len(args) > 0 && args[0] == "work" {
		return runWork(args[1:], stdout, stderr, nil)
	}
	if len(args) > 0 && args[0] == "merge" {
		return runMerge(args[1:], stdout, stderr)
	}
	fs := flag.NewFlagSet("bpbench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		models      = fs.String("models", "tage", "comma-separated model specs: named models or kind:key=value,... configurations (see -list)")
		sweep       = fs.String("sweep", "", "expand a spec field into a matrix axis: key=lo:hi (inclusive int range) or key=v1,v2,..., applied to every -models spec")
		scenarios   = fs.String("scenarios", "A", "comma-separated update scenarii: I, A, B, C")
		traces      = fs.String("traces", "", "comma-separated workloads: benchmark names/globs, generator specs like 'phased:period=4096#1', or 'file:path.bpt' (default: all 40 benchmarks)")
		traceSweep  = fs.String("trace-sweep", "", "expand a workload-spec field into a matrix axis: key=lo:hi (inclusive int range) or key=v1,v2,..., applied to every -traces generator spec")
		branches    = fs.String("branches", "200000", "comma-separated branches-per-trace lengths")
		delta       = fs.String("delta", "", "storage-budget axis: deltaLog range 'lo:hi' (inclusive) or comma list, e.g. '-4:3' (scalable models only)")
		resume      = fs.String("resume", "", "append-only JSONL result store: skip cells already present, append only the missing ones")
		include     = fs.String("include", "", "comma-separated cell globs to keep (model/trace/scenario/branches)")
		exclude     = fs.String("exclude", "", "comma-separated cell globs to drop")
		format      = fs.String("format", "table", "output format: table, jsonl or csv")
		outPath     = fs.String("o", "", "write records to this file instead of stdout")
		parallel    = fs.Int("parallelism", 0, "max concurrent jobs (default: NumCPU)")
		cellPar     = fs.Int("cell-par", 0, "intra-cell workers: shard each cell group's traces across this many goroutines (deterministic; 0/1 = off)")
		window      = fs.Int("window", 0, "in-flight branch window (default 24)")
		execDelay   = fs.Int("execdelay", 0, "fetch-to-execute distance in branches (default 6)")
		warmCache   = fs.Bool("warm-cache", false, "checkpoint every cell into a store-adjacent blob cache (derived from -resume or -o: path + \".ckpt/\") and warm-start matching cells from it on repeat runs")
		warmDir     = fs.String("warm-cache-dir", "", "blob cache directory for -warm-cache (overrides the derived location; implies -warm-cache)")
		ckEvery     = fs.Uint64("checkpoint-every", 0, "periodic checkpoint interval in branches for -warm-cache (default 1000000)")
		noCache     = fs.Bool("notracecache", false, "regenerate the trace for every job instead of sharing per (trace, length)")
		noPool      = fs.Bool("nopredictorpool", false, "construct a fresh predictor per cell instead of Reset-reusing a pooled instance per worker")
		noAgg       = fs.Bool("noaggregates", false, "suppress category/hard/suite rollup records")
		perf        = fs.Bool("perf", false, "print a simulator-throughput (branches/sec) table to stderr after the run")
		list        = fs.Bool("list", false, "list models and traces, then exit")
		metricsAddr = fs.String("metrics-addr", "", "serve Prometheus /metrics and /debug/pprof on this address (e.g. :9090) for the duration of the run")
		progress    = fs.Bool("progress", false, "render a periodic one-line progress report (cells done/total, branches/sec, ETA) to stderr")
		cpuprofile  = fs.String("cpuprofile", "", "write a CPU profile to this file on exit")
		memprofile  = fs.String("memprofile", "", "write a heap profile to this file on exit")
	)
	verbose, quiet := cli.Verbosity(fs)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	log := cli.NewLogger(stderr, *verbose, *quiet)
	if fs.NArg() > 0 {
		log.Error(fmt.Sprintf("bpbench: unexpected arguments %q (did you mean 'bpbench diff'?)", fs.Args()))
		return 2
	}
	if *list {
		fmt.Fprintln(stdout, "models: ", strings.Join(repro.ModelNames(), " "))
		fmt.Fprintln(stdout, "spec kinds: ", strings.Join(repro.SpecKinds(), " "), " (e.g. 'tage:tables=9,hist=6:500', 'composed:tage+ium+lsc')")
		fmt.Fprintln(stdout, "scalable (-delta): ", strings.Join(repro.ScalableModelNames(), " "), " plus every kind: spec")
		fmt.Fprintln(stdout, "traces: ", strings.Join(repro.TraceNames(), " "))
		fmt.Fprintln(stdout, "workload kinds (-traces specs):")
		for _, l := range repro.WorkloadKindSummaries() {
			fmt.Fprintln(stdout, "  "+l)
		}
		return 0
	}

	if *window < 0 || *execDelay < 0 {
		log.Error("bpbench: -window and -execdelay must be non-negative (0 = default)")
		return 2
	}
	if *cellPar < 0 {
		log.Error("bpbench: -cell-par must be non-negative (0 = off)")
		return 2
	}
	lengths, err := parseLengths(*branches)
	if err != nil {
		log.Error(fmt.Sprintf("bpbench: %v", err))
		return 2
	}
	deltas, err := parseDeltas(*delta)
	if err != nil {
		log.Error(fmt.Sprintf("bpbench: %v", err))
		return 2
	}

	// Profiles are written when run returns, clean exit or not, so an
	// interrupted-by-error invocation still yields its samples.
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			log.Error(fmt.Sprintf("bpbench: %v", err))
			return 2
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			log.Error(fmt.Sprintf("bpbench: -cpuprofile: %v", err))
			return 2
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
			log.Debug(fmt.Sprintf("bpbench: wrote CPU profile to %s", *cpuprofile))
		}()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				log.Error(fmt.Sprintf("bpbench: -memprofile: %v", err))
				return
			}
			runtime.GC() // up-to-date heap statistics
			if err := pprof.WriteHeapProfile(f); err != nil {
				log.Error(fmt.Sprintf("bpbench: -memprofile: %v", err))
			}
			f.Close()
			log.Debug(fmt.Sprintf("bpbench: wrote heap profile to %s", *memprofile))
		}()
	}

	// Telemetry: one registry feeds the harness, the /metrics endpoint
	// and the progress line alike. Created only when something will read
	// it — a nil registry keeps the instrumented paths at zero overhead.
	var reg *repro.MetricsRegistry
	if *metricsAddr != "" || *progress {
		reg = repro.NewMetricsRegistry()
	}
	if *metricsAddr != "" {
		ln, err := net.Listen("tcp", *metricsAddr)
		if err != nil {
			log.Error(fmt.Sprintf("bpbench: -metrics-addr: %v", err))
			return 2
		}
		srv := &http.Server{Handler: repro.TelemetryMux(reg)}
		go func() { _ = srv.Serve(ln) }()
		defer srv.Close()
		log.Info(fmt.Sprintf("bpbench: serving /metrics and /debug/pprof on http://%s", ln.Addr()))
	}
	if *progress {
		defer repro.StartBenchProgress(stderr, reg, 0)()
	}

	// Spec-aware split: commas separate models only where a new spec
	// starts, so multi-field specs ride in one -models value.
	modelSpecs := repro.SplitSpecList(*models)
	if *sweep != "" {
		key, values, err := parseSweep(*sweep, "-sweep", repro.SpecFieldSweepsAsRange)
		if err != nil {
			log.Error(fmt.Sprintf("bpbench: %v", err))
			return 2
		}
		if modelSpecs, err = repro.SweepSpecs(modelSpecs, key, values); err != nil {
			log.Error(fmt.Sprintf("bpbench: %v", err))
			return 2
		}
	}
	// Same spec-aware split on the trace axis: commas inside a generator
	// spec's field list stay part of that spec.
	tracePatterns := repro.SplitTraceList(*traces)
	if *traceSweep != "" {
		if len(tracePatterns) == 0 {
			log.Error("bpbench: -trace-sweep rewrites generator specs; name at least one with -traces (e.g. -traces 'phased:' -trace-sweep period=1024,8192)")
			return 2
		}
		key, values, err := parseSweep(*traceSweep, "-trace-sweep", repro.TraceFieldSweepsAsRange)
		if err != nil {
			log.Error(fmt.Sprintf("bpbench: %v", err))
			return 2
		}
		if tracePatterns, err = repro.SweepTraceSpecs(tracePatterns, key, values); err != nil {
			log.Error(fmt.Sprintf("bpbench: %v", err))
			return 2
		}
	}
	if len(deltas) > 0 {
		// A spec that already carries a storage delta would collide with
		// the axis rewriting it ("tage@+1@+2" is not a spec).
		for _, s := range modelSpecs {
			if spec, err := repro.ParseSpec(s); err == nil {
				if d, has := spec.Delta(); has {
					log.Error(fmt.Sprintf("bpbench: model %q already carries a storage delta (@%+d); drop it or the -delta axis", s, d))
					return 2
				}
			}
		}
	}
	m, err := repro.NewBenchMatrix(modelSpecs, tracePatterns, *scenarios, lengths)
	if err != nil {
		log.Error(fmt.Sprintf("bpbench: %v", err))
		return 2
	}
	m.Include = splitList(*include)
	m.Exclude = splitList(*exclude)
	m.Window = *window
	m.ExecDelay = *execDelay
	m.DeltaLogs = deltas
	m.IntraCellWorkers = *cellPar

	// Every record bpbench writes — stdout, -o file, or resume store —
	// is stamped with the revision that produced it, so saved runs stay
	// interpretable after the predictor changes underneath them.
	prov := repro.CurrentProvenance()
	cfg := repro.BenchConfig{Parallelism: *parallel, IntraCellWorkers: *cellPar, NoTraceCache: *noCache, NoAggregates: *noAgg, NoPredictorPool: *noPool, Provenance: &prov, Metrics: reg}
	if *warmDir != "" {
		*warmCache = true
	}
	if *warmCache {
		dir := *warmDir
		if dir == "" {
			switch {
			case *resume != "":
				dir = repro.BenchWarmCacheDir(*resume)
			case *outPath != "":
				dir = repro.BenchWarmCacheDir(*outPath)
			default:
				log.Error("bpbench: -warm-cache derives its blob directory from -resume or -o; set one, or pass -warm-cache-dir")
				return 2
			}
		}
		if err := os.MkdirAll(dir, 0o755); err != nil {
			log.Error(fmt.Sprintf("bpbench: -warm-cache: %v", err))
			return 2
		}
		if reg == nil {
			// The hit/miss counters live on a registry; the summary line
			// below needs one even when nothing else scrapes it.
			reg = repro.NewMetricsRegistry()
		}
		cfg.WarmCache = dir
		cfg.CheckpointEvery = *ckEvery
		cfg.Metrics = reg
		defer func() {
			hits, misses := repro.BenchWarmCacheStats(reg)
			log.Info(fmt.Sprintf("bpbench: warm cache %s: %d hits, %d misses", dir, hits, misses))
		}()
	}
	if *resume != "" {
		// The store is the output: format and destination are fixed.
		if *outPath != "" {
			log.Error("bpbench: -resume writes to the store file; drop -o")
			return 2
		}
		if *format != "table" && *format != "jsonl" {
			log.Error("bpbench: -resume stores records as jsonl; drop -format")
			return 2
		}
		return runResume(m, cfg, *resume, *perf, stderr, log)
	}

	out := stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			log.Error(fmt.Sprintf("bpbench: %v", err))
			return 2
		}
		defer f.Close()
		out = f
	}
	sink, err := repro.NewBenchSink(*format, out)
	if err != nil {
		log.Error(fmt.Sprintf("bpbench: %v", err))
		return 2
	}

	log.Debug(fmt.Sprintf("bpbench: sweeping %d model spec(s) in %s format", len(modelSpecs), *format))
	sum, err := repro.RunBench(m, cfg, sink)
	if err != nil {
		log.Error(fmt.Sprintf("bpbench: %v", err))
		return 2
	}
	if sum.Jobs == 0 {
		log.Error("bpbench: filters matched no cells")
		return 2
	}
	if *perf {
		// Telemetry, not data: stderr, so it never corrupts a JSONL/CSV
		// stream on stdout.
		repro.RenderBenchPerf(stderr, repro.BenchPerfRows(sum.Records))
	}
	if sum.Failed > 0 {
		log.Error(fmt.Sprintf("bpbench: %d of %d jobs failed", sum.Failed, sum.Jobs))
		return 1
	}
	return 0
}

// runResume implements `bpbench -resume store.jsonl`: plan the grid
// against the store's existing records, execute only the missing or
// failed cells, and append the new records. A missing store file starts
// a fresh one; a crash tail (truncated final line from a killed run) is
// dropped and overwritten, so a store survives kill -9 mid-write.
func runResume(m *repro.BenchMatrix, cfg repro.BenchConfig, path string, perf bool, stderr io.Writer, log *slog.Logger) int {
	jobs, err := repro.ExpandBench(m)
	if err != nil {
		log.Error(fmt.Sprintf("bpbench: %v", err))
		return 2
	}
	if len(jobs) == 0 {
		log.Error("bpbench: filters matched no cells")
		return 2
	}
	sum, err := repro.RunBenchResumeStore(path, jobs, cfg, func(plan *repro.BenchResumePlan) error {
		// Drift is a warning, not a refusal: reusing the cells is the
		// point of -resume, but the store now mixes revisions and
		// cross-cell comparisons should say so (bpbench compact + a
		// fresh sweep resets).
		if n := len(plan.ProvenanceDrift); n > 0 {
			log.Warn(fmt.Sprintf("bpbench: warning: %d reused cells carry provenance that may not match HEAD:", n))
			for i, w := range plan.ProvenanceDrift {
				if i == 3 {
					log.Warn(fmt.Sprintf("bpbench:   ... and %d more", n-i))
					break
				}
				log.Warn(fmt.Sprintf("bpbench:   %s", w))
			}
		}
		return nil
	})
	if err != nil {
		log.Error(fmt.Sprintf("bpbench: %v", err))
		return 2
	}
	log.Info(fmt.Sprintf("bpbench: resume %s: reused %d of %d cells, ran %d",
		path, sum.Skipped, sum.Jobs, sum.Jobs-sum.Skipped))
	if perf {
		// The merged cell set, not the appended records: reused cells
		// carry their preserved telemetry, so the table covers the whole
		// grid even when the store was complete and nothing ran.
		repro.RenderBenchPerf(stderr, repro.BenchPerfRows(sum.Merged))
	}
	if sum.Failed > 0 {
		log.Error(fmt.Sprintf("bpbench: %d of %d jobs failed", sum.Failed, sum.Jobs-sum.Skipped))
		return 1
	}
	return 0
}

// runCompact implements `bpbench compact store.jsonl [-o out.jsonl]
// [-dry-run]`: rewrite an append-only result store down to its canonical
// records (one per cell key, newest success wins, stale aggregate sets
// replaced by one recomputed set) and report what was dropped. Without
// -o the store is rewritten in place, atomically (write-then-rename), so
// a crash mid-compact never loses the original. The reader tolerates a
// crash tail the same way -resume does, so compacting a store whose last
// writer was killed mid-line works (and drops the torn tail).
func runCompact(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("bpbench compact", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		outPath    = fs.String("o", "", "write the compacted store here instead of rewriting the input in place")
		dryRun     = fs.Bool("dry-run", false, "report what compaction would keep and drop without writing anything")
		pruneDrift = fs.Bool("prune-drift", false, "additionally drop cells recorded under a different git SHA than HEAD, so a resume re-measures them")
	)
	verbose, quiet := cli.Verbosity(fs)
	usage := func() int {
		fmt.Fprintln(stderr, "usage: bpbench compact [-o out.jsonl] [-dry-run] [-prune-drift] store.jsonl")
		return 2
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() == 0 {
		return usage()
	}
	store := fs.Arg(0)
	// Accept flags after the store path too (`compact store.jsonl -dry-run`).
	if err := fs.Parse(fs.Args()[1:]); err != nil {
		return 2
	}
	if fs.NArg() > 0 {
		return usage()
	}
	log := cli.NewLogger(stderr, *verbose, *quiet)

	recs, _, err := repro.ReadBenchStoreFile(store)
	if err != nil {
		log.Error(fmt.Sprintf("bpbench: %v", err))
		return 2
	}
	opts := repro.BenchCompactOpts{}
	if *pruneDrift {
		opts.PruneDrift = true
		opts.Head = repro.CurrentProvenance()
		if opts.Head.GitSHA == "" {
			log.Error("bpbench: -prune-drift needs a git HEAD to prune against, and none was found")
			return 2
		}
	}
	out, stats := repro.CompactStoreWith(recs, opts)
	// The recomputed aggregate set can be larger than what the store held
	// (a crash tore through the final aggregate block): account drops and
	// repairs separately so neither count can ever print negative.
	staleAggs, restored := stats.AggregatesIn-stats.AggregatesOut, 0
	if staleAggs < 0 {
		staleAggs, restored = 0, -staleAggs
	}
	repair := ""
	if restored > 0 {
		repair = fmt.Sprintf("; %d aggregate records restored by recompute", restored)
	}
	drift := ""
	if *pruneDrift {
		drift = fmt.Sprintf(", %d drifted cells (other git SHA than %s)", stats.DriftDropped, opts.Head.Short())
	}
	log.Info(fmt.Sprintf(
		"bpbench: compact %s: %d records in, %d out (%d dropped: %d superseded failures, %d duplicate cells, %d stale aggregates%s%s); %d distinct cells (%d still failed), aggregates %d -> %d",
		store, stats.In, stats.Out, stats.SupersededFailed+stats.DuplicateCells+staleAggs+stats.DriftDropped,
		stats.SupersededFailed, stats.DuplicateCells, staleAggs, repair, drift,
		stats.CellsOut, stats.FailedKept, stats.AggregatesIn, stats.AggregatesOut))
	if prov := repro.StoreProvenance(recs); len(prov) > 1 {
		log.Info(fmt.Sprintf("bpbench: note: store spans %d revisions", len(prov)))
	}
	if *dryRun {
		return 0
	}

	dest := *outPath
	if dest == "" {
		dest = store
	}
	tmp := dest + ".compact.tmp"
	f, err := os.Create(tmp)
	if err != nil {
		log.Error(fmt.Sprintf("bpbench: %v", err))
		return 2
	}
	sink, err := repro.NewBenchSink("jsonl", f)
	if err != nil {
		f.Close()
		os.Remove(tmp)
		log.Error(fmt.Sprintf("bpbench: %v", err))
		return 2
	}
	for _, r := range out {
		if err == nil {
			err = sink.Emit(r)
		}
	}
	if cerr := sink.Close(); err == nil {
		err = cerr
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmp, dest)
	}
	if err != nil {
		os.Remove(tmp)
		log.Error(fmt.Sprintf("bpbench: %v", err))
		return 2
	}
	return 0
}

// runDiff implements `bpbench diff old.jsonl new.jsonl`.
func runDiff(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("bpbench diff", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		tolerance  = fs.Float64("tolerance", 0.02, "relative MPKI increase tolerated before a cell counts as a regression")
		absFloor   = fs.Float64("absfloor", 0.005, "absolute MPKI delta below which a cell never regresses")
		provenance = fs.Bool("provenance", false, "show which git revision produced each side and each moved cell")
	)
	verbose, quiet := cli.Verbosity(fs)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	// Accept flags before or after the two store paths (`bpbench diff
	// old.jsonl new.jsonl -tolerance 0.05`): flag.Parse stops at the
	// first positional, so consume positionals one at a time and
	// re-parse what follows.
	var paths []string
	for fs.NArg() > 0 && len(paths) < 2 {
		paths = append(paths, fs.Arg(0))
		if err := fs.Parse(fs.Args()[1:]); err != nil {
			return 2
		}
	}
	log := cli.NewLogger(stderr, *verbose, *quiet)
	if len(paths) != 2 || fs.NArg() > 0 {
		fmt.Fprintln(stderr, "usage: bpbench diff [-tolerance t] [-absfloor a] [-provenance] old.jsonl new.jsonl")
		return 2
	}
	// An explicit `-tolerance 0` / `-absfloor 0` means strict exact
	// matching, which the library expresses as a negative value (its
	// zero value selects the defaults).
	opt := repro.BenchDiffOptions{Tolerance: *tolerance, AbsFloor: *absFloor}
	fs.Visit(func(f *flag.Flag) {
		if f.Name == "tolerance" && opt.Tolerance == 0 {
			opt.Tolerance = -1
		}
		if f.Name == "absfloor" && opt.AbsFloor == 0 {
			opt.AbsFloor = -1
		}
	})
	rep, err := repro.BenchDiffFiles(paths[0], paths[1], opt)
	if err != nil {
		log.Error(fmt.Sprintf("bpbench: %v", err))
		return 2
	}
	rep.ShowProvenance = *provenance
	rep.Render(stdout)
	if rep.Cells == 0 {
		// A baseline that parses to nothing (truncated file, disjoint
		// matrices) must not make the gate pass vacuously.
		log.Error("bpbench: no overlapping cells between baseline and new run")
		return 2
	}
	if rep.HasRegressions() {
		return 1
	}
	return 0
}

// splitList splits a comma-separated flag, dropping empty elements.
func splitList(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// parseSweep parses a sweep axis (-sweep for model specs, -trace-sweep
// for workload specs): "key=lo:hi" (an inclusive integer range, for
// fields the relevant registry — via rangeOK — declares
// integer-valued) or "key=v1,v2,..." (verbatim values — the form for
// fields whose values themselves contain ':', like hist=6:500,6:2000).
func parseSweep(s, flagName string, rangeOK func(string) bool) (key string, values []string, err error) {
	key, rest, ok := strings.Cut(s, "=")
	key = strings.TrimSpace(key)
	if !ok || key == "" || strings.TrimSpace(rest) == "" {
		return "", nil, fmt.Errorf("bad %s %q (want key=lo:hi or key=v1,v2,...)", flagName, s)
	}
	parts := splitList(rest)
	if len(parts) == 1 && strings.Contains(parts[0], ":") && rangeOK(key) {
		lo, hi, _ := strings.Cut(parts[0], ":")
		l, err1 := strconv.Atoi(strings.TrimSpace(lo))
		h, err2 := strconv.Atoi(strings.TrimSpace(hi))
		if err1 != nil || err2 != nil {
			return "", nil, fmt.Errorf("bad %s range %q (want lo:hi, e.g. tables=9:13)", flagName, parts[0])
		}
		if l > h {
			return "", nil, fmt.Errorf("bad %s range %q: lo %d > hi %d", flagName, parts[0], l, h)
		}
		for v := l; v <= h; v++ {
			values = append(values, strconv.Itoa(v))
		}
		return key, values, nil
	}
	return key, parts, nil
}

// parseDeltas parses the -delta axis: an inclusive "lo:hi" deltaLog
// range or a comma-separated list; empty means no budget sweep.
func parseDeltas(s string) ([]int, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, nil
	}
	if lo, hi, ok := strings.Cut(s, ":"); ok {
		l, err1 := strconv.Atoi(strings.TrimSpace(lo))
		h, err2 := strconv.Atoi(strings.TrimSpace(hi))
		if err1 != nil || err2 != nil {
			return nil, fmt.Errorf("bad -delta range %q (want lo:hi, e.g. -4:3)", s)
		}
		if l > h {
			return nil, fmt.Errorf("bad -delta range %q: lo %d > hi %d", s, l, h)
		}
		out := make([]int, 0, h-l+1)
		for d := l; d <= h; d++ {
			out = append(out, d)
		}
		return out, nil
	}
	var out []int
	for _, p := range splitList(s) {
		d, err := strconv.Atoi(p)
		if err != nil {
			return nil, fmt.Errorf("bad -delta value %q", p)
		}
		out = append(out, d)
	}
	return out, nil
}

// parseLengths parses the -branches axis.
func parseLengths(s string) ([]int, error) {
	var out []int
	for _, p := range splitList(s) {
		n, err := strconv.Atoi(p)
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("bad branch count %q", p)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty -branches list")
	}
	return out, nil
}
