package main

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro"
)

func runCapture(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errBuf bytes.Buffer
	code = run(args, &out, &errBuf)
	return code, out.String(), errBuf.String()
}

func TestRunMatrixJSONL(t *testing.T) {
	code, out, errOut := runCapture(t,
		"-models", "gshare", "-scenarios", "A,C", "-traces", "INT01,INT02",
		"-branches", "2000", "-format", "jsonl", "-parallelism", "4")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut)
	}
	recs, err := repro.ReadBenchRecords(strings.NewReader(out))
	if err != nil {
		t.Fatal(err)
	}
	var cells, aggs []repro.BenchRecord
	for _, r := range recs {
		if r.Kind == "cell" {
			cells = append(cells, r)
		} else {
			aggs = append(aggs, r)
		}
	}
	if len(cells) != 4 {
		t.Fatalf("got %d cell records, want 4 (1 model x 2 traces x 2 scenarios)", len(cells))
	}
	wantKeys := []string{
		"gshare/INT01/A/2000", "gshare/INT01/C/2000",
		"gshare/INT02/A/2000", "gshare/INT02/C/2000",
	}
	for i, k := range wantKeys {
		if cells[i].Key() != k {
			t.Fatalf("cell %d = %s, want %s", i, cells[i].Key(), k)
		}
		if cells[i].Mispredicts == 0 || cells[i].MPKI <= 0 {
			t.Fatalf("cell %s has no measurements: %+v", k, cells[i])
		}
	}
	// category (INT) + hard + suite per (scenario) group.
	if len(aggs) != 6 {
		t.Fatalf("got %d aggregate records, want 6: %+v", len(aggs), aggs)
	}
}

func TestRunDeterministicAcrossInvocations(t *testing.T) {
	args := []string{"-models", "gshare", "-scenarios", "B", "-traces", "WS01",
		"-branches", "1500", "-format", "jsonl"}
	_, out1, _ := runCapture(t, args...)
	_, out2, _ := runCapture(t, append(args, "-notracecache", "-parallelism", "1")...)
	// Wall-clock telemetry legitimately differs between invocations; every
	// measurement field must be identical.
	norm := func(out string) []repro.BenchRecord {
		recs, err := repro.ReadBenchRecords(strings.NewReader(out))
		if err != nil {
			t.Fatal(err)
		}
		for i := range recs {
			recs[i].ElapsedSec = 0
			recs[i].BranchesPerSec = 0
		}
		return recs
	}
	if !reflect.DeepEqual(norm(out1), norm(out2)) {
		t.Fatalf("output not deterministic:\n%s\nvs\n%s", out1, out2)
	}
}

func TestRunUsageErrors(t *testing.T) {
	cases := [][]string{
		{"-models", "nope"},
		{"-scenarios", "Z"},
		{"-traces", "NOPE*"},
		{"-branches", "zero"},
		{"-branches", "-5"},
		{"-format", "xml"},
		{"stray-arg"},
		{"-include", "never-matches-anything"},
		{"-exclude", "[bad"},
		{"-window", "-1"},
		{"-execdelay", "-3"},
	}
	for _, args := range cases {
		if code, _, _ := runCapture(t, args...); code != 2 {
			t.Errorf("args %v: exit %d, want 2", args, code)
		}
	}
}

func TestListMode(t *testing.T) {
	code, out, _ := runCapture(t, "-list")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	for _, want := range []string{"tage", "gshare", "INT01", "WS08"} {
		if !strings.Contains(out, want) {
			t.Errorf("list output missing %q", want)
		}
	}
}

func TestDiffExitCodes(t *testing.T) {
	dir := t.TempDir()
	write := func(name, content string) string {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	base := `{"kind":"cell","model":"tage","trace":"INT01","scenario":"A","branches":1000,"mpki":10,"mppki":200,"mispredicts":100}` + "\n"
	same := write("same.jsonl", base)
	old := write("old.jsonl", base)
	regressed := write("new.jsonl",
		`{"kind":"cell","model":"tage","trace":"INT01","scenario":"A","branches":1000,"mpki":12,"mppki":240,"mispredicts":120}`+"\n")

	if code, out, errOut := runCapture(t, "diff", old, same); code != 0 {
		t.Fatalf("identical runs: exit %d\n%s%s", code, out, errOut)
	}
	code, out, _ := runCapture(t, "diff", old, regressed)
	if code != 1 {
		t.Fatalf("regressed run: exit %d, want 1\n%s", code, out)
	}
	if !strings.Contains(out, "REGRESSIONS") {
		t.Fatalf("diff output missing regression section:\n%s", out)
	}
	// +20% is fine under a 25% tolerance.
	if code, _, _ := runCapture(t, "diff", "-tolerance", "0.25", old, regressed); code != 0 {
		t.Fatal("tolerance flag not honoured")
	}
	if code, _, _ := runCapture(t, "diff", old); code != 2 {
		t.Fatal("missing operand must be a usage error")
	}
	// An explicit -tolerance 0 means strict: even a tiny regression fails.
	tiny := write("tiny.jsonl",
		`{"kind":"cell","model":"tage","trace":"INT01","scenario":"A","branches":1000,"mpki":10.0001,"mppki":200,"mispredicts":100}`+"\n")
	if code, _, _ := runCapture(t, "diff", "-tolerance", "0", "-absfloor", "0", old, tiny); code != 1 {
		t.Fatal("-tolerance 0 must demand exact matching")
	}
	if code, _, _ := runCapture(t, "diff", old, tiny); code != 0 {
		t.Fatal("default tolerance must absorb a +0.001% move")
	}
	// An empty baseline must not make the gate pass vacuously.
	empty := write("empty.jsonl", "")
	if code, _, _ := runCapture(t, "diff", empty, same); code != 2 {
		t.Fatal("empty baseline must be an error, not a pass")
	}
	if code, _, _ := runCapture(t, "diff", old, filepath.Join(dir, "absent.jsonl")); code != 2 {
		t.Fatal("unreadable file must be a usage error")
	}
}

func TestEndToEndRunThenDiffSelf(t *testing.T) {
	dir := t.TempDir()
	a := filepath.Join(dir, "a.jsonl")
	b := filepath.Join(dir, "b.jsonl")
	for _, p := range []string{a, b} {
		code, _, errOut := runCapture(t,
			"-models", "gshare", "-scenarios", "A", "-traces", "INT01",
			"-branches", "1200", "-format", "jsonl", "-o", p)
		if code != 0 {
			t.Fatalf("run exit %d: %s", code, errOut)
		}
	}
	if code, out, _ := runCapture(t, "diff", a, b); code != 0 {
		t.Fatalf("self-diff must pass, exit %d:\n%s", code, out)
	}
}

func TestParseLengths(t *testing.T) {
	got, err := parseLengths("1000, 2000")
	if err != nil || !reflect.DeepEqual(got, []int{1000, 2000}) {
		t.Fatalf("got %v, %v", got, err)
	}
	for _, bad := range []string{"", "x", "0", "10,-1"} {
		if _, err := parseLengths(bad); err == nil {
			t.Errorf("parseLengths(%q) must fail", bad)
		}
	}
}
