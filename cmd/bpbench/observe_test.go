package main

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestMetricsEndpointServesDuringRun: -metrics-addr serves Prometheus
// text exposition plus pprof while a sweep runs. The sweep is small, so
// the scrape happens after completion — the server stays up until run
// returns, and the families registered during the run are present.
// Scraping mid-run is CI's job (the smoke step); here we pin the
// endpoint contract.
func TestMetricsEndpointServesDuringRun(t *testing.T) {
	// Pick a free port up front so the scrape knows where to go.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	// Scrape concurrently with the run: poll until the server answers,
	// then keep the last body after run() exits the sweep.
	type scrape struct {
		body  string
		pprof bool
		err   error
	}
	got := make(chan scrape, 1)
	stop := make(chan struct{})
	go func() {
		var last scrape
		for {
			select {
			case <-stop:
				got <- last
				return
			default:
			}
			resp, err := http.Get("http://" + addr + "/metrics")
			if err == nil {
				b, rerr := io.ReadAll(resp.Body)
				resp.Body.Close()
				if rerr == nil && resp.Header.Get("Content-Type") == "text/plain; version=0.0.4; charset=utf-8" {
					last.body = string(b)
				}
			}
			if !last.pprof {
				if resp, err := http.Get("http://" + addr + "/debug/pprof/cmdline"); err == nil {
					if resp.StatusCode == http.StatusOK {
						last.pprof = true
					}
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
				}
			}
			time.Sleep(time.Millisecond)
		}
	}()

	// Enough simulation work (~0.5s) that the poller lands several
	// scrapes while the sweep is live.
	code, _, errOut := runCapture(t,
		"-models", "tage", "-scenarios", "A,B", "-traces", "INT01,INT02",
		"-branches", "1000000", "-parallelism", "2", "-format", "jsonl", "-metrics-addr", addr)
	close(stop)
	s := <-got
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut)
	}
	if !strings.Contains(errOut, "serving /metrics and /debug/pprof") {
		t.Fatalf("no serving banner in stderr: %s", errOut)
	}
	if s.body == "" {
		t.Fatalf("never scraped a valid /metrics response (err %v)", s.err)
	}
	for _, family := range []string{
		"# TYPE bpbench_jobs_total counter",
		"# TYPE bpbench_branches_per_sec gauge",
		"# TYPE bpbench_branches_retired_total counter",
		"# TYPE bpbench_cells_done gauge",
	} {
		if !strings.Contains(s.body, family) {
			t.Errorf("scrape missing %q:\n%s", family, s.body)
		}
	}
	if !s.pprof {
		t.Error("/debug/pprof/cmdline never answered during the run")
	}
}

func TestMetricsAddrInvalid(t *testing.T) {
	code, _, errOut := runCapture(t,
		"-models", "gshare", "-traces", "INT01", "-branches", "2000",
		"-metrics-addr", "not-an-address:99999")
	if code != 2 || !strings.Contains(errOut, "-metrics-addr") {
		t.Fatalf("exit %d, stderr %q; want exit 2 mentioning -metrics-addr", code, errOut)
	}
}

// TestProgressFlag: -progress renders at least the final report line,
// fed by the run's registry.
func TestProgressFlag(t *testing.T) {
	code, _, errOut := runCapture(t,
		"-models", "gshare", "-scenarios", "A,C", "-traces", "INT01,INT02",
		"-branches", "2000", "-format", "jsonl", "-progress")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut)
	}
	if !strings.Contains(errOut, "progress: 4/4 cells") {
		t.Fatalf("final progress line missing: %s", errOut)
	}
	if !strings.Contains(errOut, "ETA done") {
		t.Fatalf("completed sweep should report ETA done: %s", errOut)
	}
}

// TestProfileFlags: -cpuprofile and -memprofile write non-empty pprof
// files on exit.
func TestProfileFlags(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pb.gz")
	mem := filepath.Join(dir, "mem.pb.gz")
	code, _, errOut := runCapture(t,
		"-models", "gshare", "-traces", "INT01", "-branches", "20000",
		"-format", "jsonl", "-cpuprofile", cpu, "-memprofile", mem)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut)
	}
	for _, p := range []string{cpu, mem} {
		fi, err := os.Stat(p)
		if err != nil {
			t.Fatalf("profile %s not written: %v", p, err)
		}
		if fi.Size() == 0 {
			t.Fatalf("profile %s is empty", p)
		}
	}
}

// TestQuietAndVerbose: -quiet suppresses the info-level resume line but
// never errors; -v adds debug detail.
func TestQuietAndVerbose(t *testing.T) {
	store := filepath.Join(t.TempDir(), "store.jsonl")
	args := func(extra ...string) []string {
		return append([]string{
			"-models", "gshare", "-traces", "INT01", "-branches", "2000",
			"-resume", store}, extra...)
	}

	code, _, errOut := runCapture(t, args("-quiet")...)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errOut)
	}
	if strings.Contains(errOut, "reused 0 of 1 cells") {
		t.Fatalf("-quiet leaked the info line: %s", errOut)
	}

	code, _, errOut = runCapture(t, args("-v")...)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errOut)
	}
	if !strings.Contains(errOut, "reused 1 of 1 cells, ran 0") {
		t.Fatalf("resume info line missing with -v: %s", errOut)
	}
	if !strings.Contains(errOut, "level=INFO") {
		t.Fatalf("slog line format missing: %s", errOut)
	}

	// Errors survive -quiet.
	code, _, errOut = runCapture(t, "-models", "no-such-model", "-quiet")
	if code != 2 || !strings.Contains(errOut, "level=ERROR") {
		t.Fatalf("exit %d, stderr %q; want exit 2 with an ERROR line", code, errOut)
	}
}

// TestDiffIgnoresStoreTelemetry is the end-to-end half of the
// diff-ignores-telemetry guard: two sweeps of the same grid — one plain,
// one with telemetry enabled — must diff to zero movement.
func TestDiffIgnoresStoreTelemetry(t *testing.T) {
	dir := t.TempDir()
	plain := filepath.Join(dir, "plain.jsonl")
	instr := filepath.Join(dir, "instrumented.jsonl")
	base := []string{"-models", "gshare", "-scenarios", "A,C",
		"-traces", "INT01,INT02", "-branches", "2000", "-format", "jsonl"}

	if code, _, errOut := runCapture(t, append(base, "-o", plain)...); code != 0 {
		t.Fatalf("plain run exit %d: %s", code, errOut)
	}
	if code, _, errOut := runCapture(t, append(base, "-o", instr, "-progress")...); code != 0 {
		t.Fatalf("instrumented run exit %d: %s", code, errOut)
	}

	code, out, errOut := runCapture(t, "diff", plain, instr, "-tolerance", "0", "-absfloor", "0")
	if code != 0 {
		t.Fatalf("diff exit %d (want zero movement):\nstdout: %s\nstderr: %s", code, out, errOut)
	}
	if !strings.Contains(out, fmt.Sprintf("compared %d cells: 0 regressions, 0 improvements", 4)) {
		t.Fatalf("diff not clean: %s", out)
	}
}
